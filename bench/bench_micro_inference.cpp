// Google-benchmark microbenchmarks of the raw forest evaluators: node-
// pointer interpretation, flattened-array interpretation, and JIT-compiled
// native code, across forest sizes. Complements Table 1 with controlled
// synthetic forests (no corpus required).

#include <benchmark/benchmark.h>

#include <functional>

#include "common/random.h"
#include "gbt/forest.h"
#include "treejit/evaluator.h"
#include "treejit/jit.h"

namespace t3 {
namespace {

constexpr int kFeatures = 46;

Forest MakeForest(int num_trees, int leaves_per_tree, uint64_t seed) {
  Rng rng(seed);
  Forest forest;
  forest.num_features = kFeatures;
  forest.base_score = 0.5;
  for (int t = 0; t < num_trees; ++t) {
    Tree tree;
    std::function<int(int)> build = [&](int leaves) -> int {
      const int index = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back(TreeNode{});
      if (leaves <= 1) {
        tree.nodes[static_cast<size_t>(index)].is_leaf = true;
        tree.nodes[static_cast<size_t>(index)].value = rng.UniformDouble(-1, 1);
        return index;
      }
      const int left_leaves = 1 + static_cast<int>(rng.UniformInt(0, leaves - 2));
      const int feature = static_cast<int>(rng.UniformInt(0, kFeatures - 1));
      const double threshold = rng.UniformDouble(0, 1);
      const int left = build(left_leaves);
      const int right = build(leaves - left_leaves);
      TreeNode& node = tree.nodes[static_cast<size_t>(index)];
      node.is_leaf = false;
      node.feature = feature;
      node.threshold = threshold;
      node.left = left;
      node.right = right;
      return index;
    };
    build(leaves_per_tree);
    forest.trees.push_back(std::move(tree));
  }
  return forest;
}

std::vector<double> MakeRow(uint64_t seed) {
  Rng rng(seed);
  std::vector<double> row(kFeatures);
  for (double& v : row) v = rng.UniformDouble(0, 1);
  return row;
}

void BM_Interpreted(benchmark::State& state) {
  const Forest forest =
      MakeForest(static_cast<int>(state.range(0)), 31, 42);
  const InterpretedEvaluator evaluator(forest);
  const auto row = MakeRow(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Predict(row.data()));
  }
}
BENCHMARK(BM_Interpreted)->Arg(10)->Arg(50)->Arg(200);

void BM_Flat(benchmark::State& state) {
  const Forest forest =
      MakeForest(static_cast<int>(state.range(0)), 31, 42);
  const FlatEvaluator evaluator(forest);
  const auto row = MakeRow(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Predict(row.data()));
  }
}
BENCHMARK(BM_Flat)->Arg(10)->Arg(50)->Arg(200);

void BM_Compiled(benchmark::State& state) {
  const Forest forest =
      MakeForest(static_cast<int>(state.range(0)), 31, 42);
  auto compiled = CompiledForest::Compile(forest);
  T3_CHECK(compiled.ok());
  const auto row = MakeRow(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*compiled)->Predict(row.data()));
  }
}
BENCHMARK(BM_Compiled)->Arg(10)->Arg(50)->Arg(200);

void BM_CompiledBatch(benchmark::State& state) {
  const Forest forest = MakeForest(200, 31, 42);
  auto compiled = CompiledForest::Compile(forest);
  T3_CHECK(compiled.ok());
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(9);
  std::vector<double> rows(batch * kFeatures);
  for (double& v : rows) v = rng.UniformDouble(0, 1);
  std::vector<double> out(batch);
  for (auto _ : state) {
    (*compiled)->PredictBatch(rows.data(), batch, kFeatures, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_CompiledBatch)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace t3

BENCHMARK_MAIN();
