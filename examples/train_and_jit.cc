// End-to-end tour of the model-core subsystem: generate a synthetic
// regression problem, train a gradient-boosted forest on it, serialize it,
// JIT-compile it to native code, and compare interpreted vs compiled
// predictions and latency.
//
// Run from anywhere: ./build/examples/example_train_and_jit

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "gbt/trainer.h"
#include "treejit/evaluator.h"
#include "treejit/jit.h"

namespace {

constexpr size_t kFeatures = 8;
constexpr size_t kRows = 4000;

// Ground truth the forest has to learn: a smooth nonlinear function with an
// interaction term.
double GroundTruth(const double* x) {
  return 3.0 * x[0] + x[1] * x[1] - 2.0 * x[2] * x[3] + 0.5 * x[4];
}

}  // namespace

int main() {
  using namespace t3;

  // 1. Synthetic training data.
  Rng rng(7);
  std::vector<double> rows(kRows * kFeatures);
  for (double& v : rows) v = rng.UniformDouble(0, 1);
  std::vector<double> targets(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    targets[i] = GroundTruth(&rows[i * kFeatures]) + rng.Gaussian(0, 0.01);
  }

  // 2. Train.
  TrainParams params;
  params.num_trees = 100;
  params.max_leaves = 31;
  params.objective = Objective::kL2;
  TrainStats stats;
  Result<Forest> forest =
      TrainForest(rows, targets, kFeatures, params, &stats);
  if (!forest.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 forest.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %d trees (%zu leaves total), valid loss %.5f%s\n",
              stats.num_trees, forest->NumLeaves(), stats.best_valid_loss,
              stats.early_stopped ? " [early stop]" : "");

  // 3. Text round-trip, the same format as data/model_*.txt.
  Result<Forest> reloaded = Forest::FromText(forest->ToText());
  if (!reloaded.ok()) {
    std::fprintf(stderr, "round-trip failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }

  // 4. Compile to native code; fall back to the flattened-array
  // interpreter when the host cannot JIT (non-x86-64, no mmap).
  const InterpretedEvaluator interpreted(*reloaded);
  const FlatEvaluator flat(*reloaded);
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(*reloaded);
  const ForestEvaluator* best_evaluator = &flat;
  if (compiled.ok()) {
    std::printf("JIT: %zu bytes of x86-64 code for %zu nodes\n",
                (*compiled)->code_size(), reloaded->NumNodes());
    best_evaluator = compiled->get();
  } else {
    std::printf("JIT unavailable (%s); using the flat interpreter\n",
                compiled.status().ToString().c_str());
  }

  // 5. Predict and compare.
  std::vector<double> probe(kFeatures, 0.5);
  const double reference = interpreted.Predict(probe.data());
  std::printf("prediction at x=0.5..: %.5f (truth %.5f)\n", reference,
              GroundTruth(probe.data()));
  if (best_evaluator->Predict(probe.data()) != reference ||
      flat.Predict(probe.data()) != reference) {
    std::fprintf(stderr, "evaluators disagree!\n");
    return 1;
  }

  // 6. Quick latency comparison on one row.
  auto median_nanos = [&](const ForestEvaluator& evaluator) {
    double best = 1e18;
    for (int rep = 0; rep < 5; ++rep) {
      Stopwatch timer;
      double sink = 0;
      for (int i = 0; i < 1000; ++i) sink += evaluator.Predict(probe.data());
      const double nanos = static_cast<double>(timer.ElapsedNanos()) / 1000.0;
      if (sink != 0 && nanos < best) best = nanos;
    }
    return best;
  };
  std::printf("per-row latency: interpreted %.0fns, flat %.0fns",
              median_nanos(interpreted), median_nanos(flat));
  if (compiled.ok()) std::printf(", compiled %.0fns", median_nanos(**compiled));
  std::printf("\n");
  return 0;
}
