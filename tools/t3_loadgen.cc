// t3_loadgen — load generator for the t3_serve prediction service:
// N concurrent connections issuing kPredictRows batches, with optional
// mid-run hot swap, reporting sustained predictions/sec and latency
// percentiles.
//
//   t3_loadgen --port N [--host H] [--connections N] [--rows N]
//              [--seconds S] [--rate R] [--seed N]
//              [--swap-at S --swap-path FILE] [--shutdown]
//
// --connections — concurrent client connections, one thread each
//                 (default 8).
// --rows        — feature rows per request frame (default 64).
// --seconds     — run duration (default 5).
// --rate        — open-loop request rate across all connections, in
//                 requests/sec; 0 = closed loop, each connection keeps one
//                 request in flight (default 0).
// --seed        — feature-value RNG seed (default 42).
// --swap-at     — seconds into the run at which to send one kSwapModel
//                 frame on a dedicated admin connection.
// --swap-path   — model path of that swap ("" = the server's default).
// --shutdown    — send kShutdown after the run and wait for the ack.
//
// Every request must be answered: the report counts errors, and any error
// (including a dropped response during the hot swap) fails the run.
//
// Exit status: 0 success (zero errors), 1 run failure, 2 usage error.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cli_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "server/client.h"
#include "server/protocol.h"

namespace t3 {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: t3_loadgen --port N [--host H] [--connections N] [--rows N]\n"
      "                  [--seconds S] [--rate R] [--seed N]\n"
      "                  [--swap-at S --swap-path FILE] [--shutdown]\n");
  return 2;
}

struct Args {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t connections = 8;
  size_t rows = 64;
  double seconds = 5.0;
  double rate = 0.0;
  uint64_t seed = 42;
  double swap_at = -1.0;
  std::string swap_path;
  bool shutdown = false;
};

constexpr const char* kTool = "t3_loadgen";

bool ParseArgs(int argc, char** argv, Args* args) {
  bool have_port = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host") {
      if (!CliValue(kTool, argc, argv, &i, "--host", &args->host)) {
        return false;
      }
    } else if (arg == "--port") {
      uint64_t port = 0;
      if (!CliUint64(kTool, argc, argv, &i, "--port", 1, 65535,
                     "must be an integer in [1, 65535]", &port)) {
        return false;
      }
      args->port = static_cast<uint16_t>(port);
      have_port = true;
    } else if (arg == "--connections") {
      uint64_t connections = 0;
      if (!CliUint64(kTool, argc, argv, &i, "--connections", 1, 4096,
                     "must be an integer in [1, 4096]", &connections)) {
        return false;
      }
      args->connections = static_cast<size_t>(connections);
    } else if (arg == "--rows") {
      uint64_t rows = 0;
      if (!CliUint64(kTool, argc, argv, &i, "--rows", 1, kMaxRowsPerRequest,
                     "must be an integer in [1, 8192]", &rows)) {
        return false;
      }
      args->rows = static_cast<size_t>(rows);
    } else if (arg == "--seconds") {
      if (!CliPositiveDouble(kTool, argc, argv, &i, "--seconds",
                             &args->seconds)) {
        return false;
      }
    } else if (arg == "--rate") {
      if (!CliPositiveDouble(kTool, argc, argv, &i, "--rate",
                             &args->rate)) {
        return false;
      }
    } else if (arg == "--seed") {
      if (!CliUint64(kTool, argc, argv, &i, "--seed", 0, UINT64_MAX,
                     "must be an unsigned integer", &args->seed)) {
        return false;
      }
    } else if (arg == "--swap-at") {
      if (!CliPositiveDouble(kTool, argc, argv, &i, "--swap-at",
                             &args->swap_at)) {
        return false;
      }
    } else if (arg == "--swap-path") {
      if (!CliValue(kTool, argc, argv, &i, "--swap-path",
                    &args->swap_path)) {
        return false;
      }
    } else if (arg == "--shutdown") {
      args->shutdown = true;
    } else {
      return CliError(kTool, arg.c_str(), "is not a recognized argument");
    }
  }
  if (!have_port) return CliError(kTool, "--port", "is required");
  return true;
}

/// The "model_features N" line of the server's stats text.
int ParseModelFeatures(const std::string& stats_text) {
  for (const std::string& line : Split(stats_text, '\n')) {
    const std::vector<std::string> parts = Split(line, ' ');
    if (parts.size() == 2 && parts[0] == "model_features") {
      int64_t value = 0;
      if (ParseInt64(parts[1], &value)) return static_cast<int>(value);
    }
  }
  return -1;
}

struct ConnectionReport {
  std::vector<double> latency_ns;
  uint64_t requests = 0;
  uint64_t rows = 0;
  uint64_t errors = 0;
  std::set<uint32_t> versions;
};

void RunConnection(const Args& args, size_t index, int num_features,
                   const std::atomic<bool>* stop_flag,
                   ConnectionReport* report) {
  Result<PredictionClient> client =
      PredictionClient::Connect(args.host, args.port);
  if (!client.ok()) {
    std::fprintf(stderr, "t3_loadgen: connection %zu: %s\n", index,
                 client.status().ToString().c_str());
    report->errors++;
    return;
  }

  Rng rng(args.seed + index);
  PredictRowsRequest request;
  request.num_features = static_cast<uint32_t>(num_features);
  request.rows.resize(args.rows * static_cast<size_t>(num_features));
  for (double& value : request.rows) {
    value = rng.UniformDouble(0.0, 1000.0);
  }
  request.input_cardinalities.assign(args.rows, 1000.0);

  // Open loop: this connection's share of the total request rate.
  const double per_conn_rate =
      args.rate > 0.0 ? args.rate / static_cast<double>(args.connections)
                      : 0.0;
  const double interval_s =
      per_conn_rate > 0.0 ? 1.0 / per_conn_rate : 0.0;

  Stopwatch run_timer;
  uint64_t sent = 0;
  while (!stop_flag->load(std::memory_order_acquire)) {
    if (interval_s > 0.0) {
      const double next_send = static_cast<double>(sent) * interval_s;
      const double now = run_timer.ElapsedSeconds();
      if (now < next_send) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(next_send - now));
        continue;
      }
    }
    // Vary one cell per request so responses are not trivially cacheable
    // anywhere in the path.
    request.rows[sent % request.rows.size()] =
        rng.UniformDouble(0.0, 1000.0);
    Stopwatch latency;
    Result<PredictResponse> response = client->PredictRows(request);
    if (!response.ok()) {
      report->errors++;
      std::fprintf(stderr, "t3_loadgen: connection %zu: %s\n", index,
                   response.status().ToString().c_str());
      return;
    }
    report->latency_ns.push_back(
        static_cast<double>(latency.ElapsedNanos()));
    report->requests++;
    report->rows += response->predictions.size();
    report->versions.insert(response->model_version);
    sent++;
  }
}

int Run(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();

  // Admin connection: learn the feature width, drive the optional swap and
  // shutdown. Dedicated so admin replies never interleave with the FIFO
  // prediction stream of a load connection.
  Result<PredictionClient> admin =
      PredictionClient::Connect(args.host, args.port);
  if (!admin.ok()) {
    std::fprintf(stderr, "t3_loadgen: %s\n",
                 admin.status().ToString().c_str());
    return 1;
  }
  Result<std::string> stats = admin->Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "t3_loadgen: stats: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  const int num_features = ParseModelFeatures(*stats);
  if (num_features <= 0) {
    std::fprintf(stderr,
                 "t3_loadgen: server stats carry no model_features line\n");
    return 1;
  }

  std::atomic<bool> stop_flag{false};
  std::vector<ConnectionReport> reports(args.connections);
  std::vector<std::thread> threads;
  threads.reserve(args.connections);
  Stopwatch run_timer;
  for (size_t i = 0; i < args.connections; ++i) {
    threads.emplace_back(RunConnection, std::cref(args), i, num_features,
                         &stop_flag, &reports[i]);
  }

  bool swap_failed = false;
  uint32_t swapped_version = 0;
  if (args.swap_at > 0.0 && args.swap_at < args.seconds) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(args.swap_at));
    Result<uint32_t> version = admin->Swap(args.swap_path);
    if (version.ok()) {
      swapped_version = *version;
      std::fprintf(stderr, "t3_loadgen: hot swap at %.1fs -> version %u\n",
                   run_timer.ElapsedSeconds(), *version);
    } else {
      swap_failed = true;
      std::fprintf(stderr, "t3_loadgen: hot swap failed: %s\n",
                   version.status().ToString().c_str());
    }
  }

  const double remaining = args.seconds - run_timer.ElapsedSeconds();
  if (remaining > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
  }
  stop_flag.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  const double elapsed = run_timer.ElapsedSeconds();

  ConnectionReport total;
  for (const ConnectionReport& report : reports) {
    total.requests += report.requests;
    total.rows += report.rows;
    total.errors += report.errors;
    total.versions.insert(report.versions.begin(), report.versions.end());
    total.latency_ns.insert(total.latency_ns.end(),
                            report.latency_ns.begin(),
                            report.latency_ns.end());
  }

  std::string versions_text;
  for (const uint32_t version : total.versions) {
    if (!versions_text.empty()) versions_text += ",";
    versions_text += StrFormat("%u", version);
  }
  const double preds_per_sec =
      elapsed > 0.0 ? static_cast<double>(total.rows) / elapsed : 0.0;
  std::printf("t3_loadgen: connections=%zu rows_per_request=%zu "
              "elapsed=%.2fs mode=%s\n",
              args.connections, args.rows, elapsed,
              args.rate > 0.0 ? "open" : "closed");
  std::printf("t3_loadgen: requests=%llu predictions=%llu "
              "preds_per_sec=%.0f errors=%llu\n",
              static_cast<unsigned long long>(total.requests),
              static_cast<unsigned long long>(total.rows), preds_per_sec,
              static_cast<unsigned long long>(total.errors));
  if (!total.latency_ns.empty()) {
    std::printf("t3_loadgen: latency p50=%s p99=%s\n",
                FormatDuration(Quantile(total.latency_ns, 0.50)).c_str(),
                FormatDuration(Quantile(total.latency_ns, 0.99)).c_str());
  }
  std::printf("t3_loadgen: model_versions_seen=%s\n", versions_text.c_str());

  if (swapped_version != 0 && total.versions.count(swapped_version) == 0) {
    // Tolerated: a short run can end before any post-swap response lands,
    // but say so — the CI smoke run sizes --seconds so this cannot happen.
    std::fprintf(stderr,
                 "t3_loadgen: note: no response carried swapped version "
                 "%u\n",
                 swapped_version);
  }

  if (args.shutdown) {
    const Status down = admin->Shutdown();
    if (!down.ok()) {
      std::fprintf(stderr, "t3_loadgen: shutdown: %s\n",
                   down.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "t3_loadgen: server acknowledged shutdown\n");
  }

  return (total.errors == 0 && !swap_failed) ? 0 : 1;
}

}  // namespace
}  // namespace t3

int main(int argc, char** argv) { return t3::Run(argc, argv); }
