// t3_serve — the T3 prediction service: serves a trained model over the
// "t3p1" wire protocol (src/server) until shut down.
//
//   t3_serve [--model FILE] [--data DIR] [--host H] [--port N]
//            [--workers N] [--swap-path FILE] [--no-remote-shutdown]
//            [--check]
//
// --model    — serve the "t3model" file at FILE. Without it, the tool
//              trains (or loads the cached) workbench main model from
//              --data, exactly like the bench binaries.
// --data     — workbench data directory (default ./data).
// --host     — bind address (default 127.0.0.1).
// --port     — TCP port; 0 picks an ephemeral port and prints it (default
//              7433).
// --workers  — event-loop threads; 0 = hardware concurrency (default 0).
// --swap-path— model file reloaded on SIGHUP and on empty-path kSwapModel
//              frames (default: the --model path, when given).
// --no-remote-shutdown — refuse kShutdown frames.
// --check    — load --model, run the serialization bit-exactness proof,
//              and exit without serving: 0 when the model is servable,
//              1 otherwise. The strict-parsing regression harness runs
//              this against deliberately corrupt fixtures.
//
// SIGHUP hot-swaps to --swap-path without dropping in-flight requests.
//
// Exit status: 0 clean shutdown (or --check pass), 1 startup/model
// failure (or --check fail), 2 usage error.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "cli_util.h"
#include "harness/workbench.h"
#include "model/t3_model.h"
#include "server/server.h"
#include "server/serving_model.h"

namespace t3 {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: t3_serve [--model FILE] [--data DIR] [--host H] [--port N]\n"
      "                [--workers N] [--swap-path FILE]\n"
      "                [--no-remote-shutdown] [--check]\n");
  return 2;
}

struct Args {
  std::string model;
  std::string data = "./data";
  std::string host = "127.0.0.1";
  uint16_t port = 7433;
  size_t workers = 0;
  std::string swap_path;
  bool remote_shutdown = true;
  bool check = false;
};

constexpr const char* kTool = "t3_serve";

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--model") {
      if (!CliValue(kTool, argc, argv, &i, "--model", &args->model)) {
        return false;
      }
    } else if (arg == "--data") {
      if (!CliValue(kTool, argc, argv, &i, "--data", &args->data)) {
        return false;
      }
    } else if (arg == "--host") {
      if (!CliValue(kTool, argc, argv, &i, "--host", &args->host)) {
        return false;
      }
    } else if (arg == "--port") {
      uint64_t port = 0;
      if (!CliUint64(kTool, argc, argv, &i, "--port", 0, 65535,
                     "must be an integer in [0, 65535]", &port)) {
        return false;
      }
      args->port = static_cast<uint16_t>(port);
    } else if (arg == "--workers") {
      uint64_t workers = 0;
      if (!CliUint64(kTool, argc, argv, &i, "--workers", 0, 1024,
                     "must be an integer in [0, 1024]", &workers)) {
        return false;
      }
      args->workers = static_cast<size_t>(workers);
    } else if (arg == "--swap-path") {
      if (!CliValue(kTool, argc, argv, &i, "--swap-path",
                    &args->swap_path)) {
        return false;
      }
    } else if (arg == "--no-remote-shutdown") {
      args->remote_shutdown = false;
    } else if (arg == "--check") {
      args->check = true;
    } else {
      return CliError(kTool, arg.c_str(), "is not a recognized argument");
    }
  }
  if (args->check && args->model.empty()) {
    return CliError(kTool, "--check", "requires --model FILE");
  }
  return true;
}

// SIGHUP only stores an atomic flag on the server (async-signal-safe); a
// worker loop performs the actual swap.
PredictionServer* g_server = nullptr;

void OnSighup(int) {
  if (g_server != nullptr) g_server->RequestSwap();
}

int Run(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();

  Result<std::shared_ptr<const ServingModel>> initial = [&args]()
      -> Result<std::shared_ptr<const ServingModel>> {
    if (!args.model.empty()) return LoadServingModel(args.model, 1);
    // The workbench path: the same cached training pipeline the bench
    // binaries use (first run trains and caches; later runs load).
    Workbench workbench(args.data);
    const T3Model& main_model = workbench.MainModel();
    return MakeServingModel(
        T3Model(main_model.forest(), main_model.target()), 1,
        "workbench:main");
  }();
  if (!initial.ok()) {
    std::fprintf(stderr, "t3_serve: %s\n",
                 initial.status().ToString().c_str());
    return 1;
  }
  if (args.check) {
    std::fprintf(stderr,
                 "t3_serve: %s is servable (%d features, %zu trees)\n",
                 args.model.c_str(), (*initial)->num_features(),
                 (*initial)->model.forest().trees.size());
    return 0;
  }

  ServerOptions options;
  options.host = args.host;
  options.port = args.port;
  options.num_workers = args.workers;
  options.allow_remote_shutdown = args.remote_shutdown;
  options.default_swap_path =
      args.swap_path.empty() ? args.model : args.swap_path;

  Result<std::unique_ptr<PredictionServer>> server =
      PredictionServer::Start(*std::move(initial), options);
  if (!server.ok()) {
    std::fprintf(stderr, "t3_serve: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  g_server = server->get();
  std::signal(SIGHUP, OnSighup);

  std::fprintf(stderr, "t3_serve: listening on %s:%u (model %s)\n",
               args.host.c_str(), (*server)->port(),
               (*server)->registry().Current()->source.c_str());
  (*server)->Wait();

  std::fprintf(stderr, "t3_serve: shut down; final stats:\n%s",
               (*server)->StatsText().c_str());
  std::signal(SIGHUP, SIG_DFL);
  g_server = nullptr;
  return 0;
}

}  // namespace
}  // namespace t3

int main(int argc, char** argv) { return t3::Run(argc, argv); }
