#include "cli_util.h"

#include <cstdio>

#include "common/string_util.h"

namespace t3 {

bool CliError(const char* tool, const char* flag, const char* detail) {
  std::fprintf(stderr, "%s: %s %s\n", tool, flag, detail);
  return false;
}

bool CliValue(const char* tool, int argc, char** argv, int* i,
              const char* flag, std::string* out) {
  if (*i + 1 >= argc) return CliError(tool, flag, "requires a value");
  *out = argv[++*i];
  return true;
}

bool CliUint64(const char* tool, int argc, char** argv, int* i,
               const char* flag, uint64_t min, uint64_t max,
               const char* detail, uint64_t* out) {
  if (*i + 1 >= argc) return CliError(tool, flag, "requires a value");
  if (!ParseUint64(argv[++*i], out) || *out < min || *out > max) {
    return CliError(tool, flag, detail);
  }
  return true;
}

bool CliPositiveDouble(const char* tool, int argc, char** argv, int* i,
                       const char* flag, double* out) {
  if (*i + 1 >= argc) return CliError(tool, flag, "requires a value");
  if (!ParseDouble(argv[++*i], out) || *out <= 0.0) {
    return CliError(tool, flag, "must be a finite number > 0");
  }
  return true;
}

}  // namespace t3
