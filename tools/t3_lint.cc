// t3_lint — static verifier driver for T3 model files.
//
//   t3_lint [--strict] <model.txt>...
//
// Runs the full analysis stack over each file: parse (without the loader's
// early-reject gate, so every finding is reported), ForestVerifier over the
// forest IR, and — where the build can emit x86-64 — JitCodeAuditor over
// the exact bytes the tree JIT would map executable. Prints one diagnostic
// per line and a per-file summary.
//
// Exit status: 0 clean, 1 any Error-severity finding (or any finding with
// --strict), 2 usage / unreadable file. CI runs this over the checked-in
// data/model_*.txt fixtures so fixture corruption fails the build.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/forest_verifier.h"
#include "analysis/jit_auditor.h"
#include "gbt/forest.h"
#include "treejit/jit.h"

namespace {

int LintFile(const std::string& path, bool strict) {
  t3::Result<std::string> content = t3::ReadFileToString(path);
  if (!content.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 content.status().ToString().c_str());
    return 2;
  }
  t3::Result<t3::Forest> forest = t3::Forest::ParseTextUnvalidated(*content);
  if (!forest.ok()) {
    std::printf("%s: error[parse]: %s\n", path.c_str(),
                forest.status().message().c_str());
    return 1;
  }

  t3::AnalysisReport report = t3::ForestVerifier().Verify(*forest);
  const bool jit_audited = t3::JitSupported() && !report.HasErrors();
  if (jit_audited) {
    // Only audit code emitted from a verified forest: the emitter's own
    // preconditions are exactly the verifier's Error checks.
    t3::Result<t3::JitArtifact> artifact = t3::EmitForestCode(*forest);
    if (!artifact.ok()) {
      std::printf("%s: error[jit-emit]: %s\n", path.c_str(),
                  artifact.status().message().c_str());
      return 1;
    }
    report.Merge(t3::JitCodeAuditor().Audit(artifact->code.data(),
                                            artifact->code.size(),
                                            artifact->entries,
                                            artifact->num_features));
  }

  for (const t3::Diagnostic& diagnostic : report.diagnostics()) {
    std::printf("%s: %s\n", path.c_str(), diagnostic.ToString().c_str());
  }
  std::printf("%s: %zu trees, %zu nodes, %d features%s: %zu errors, "
              "%zu warnings\n",
              path.c_str(), forest->trees.size(), forest->NumNodes(),
              forest->num_features,
              jit_audited ? ", jit audited" : ", jit not audited",
              report.NumErrors(), report.NumWarnings());
  if (report.HasErrors()) return 1;
  if (strict && !report.empty()) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: t3_lint [--strict] <model.txt>...\n");
    return 2;
  }
  int exit_code = 0;
  for (const std::string& path : paths) {
    const int result = LintFile(path, strict);
    if (result > exit_code) exit_code = result;
  }
  return exit_code;
}
