// t3_lint — static verifier driver for T3 artifacts: model files, plan
// files, and corpora.
//
//   t3_lint [--strict] [--json] <file>...
//
// The file kind is sniffed from the header token and picks the pass stack:
//
//  model ("t3model ..."):
//   1. parse                  — ParseTextUnvalidated (no early-reject gate,
//                               so every finding is reported),
//   2. forest-verifier        — ForestVerifier over the forest IR,
//   3. jit-audit              — JitCodeAuditor over the exact bytes the
//                               tree JIT would map executable,
//   4. translation-validation — TranslationValidator: lift the emitted code
//                               back into decision trees and prove it
//                               computes the forest (bit-equal constants,
//                               identical NaN routing, equal outputs over
//                               every threshold-induced input cell),
//   5. batch-equivalence      — JitCodeAuditor::AuditBatch +
//                               BatchEquivalenceValidator over the AVX
//                               batch kernels: lane loads / spills / pool
//                               reads in bounds, straight-line control
//                               flow, and a per-lane lift-and-prove that
//                               the masked kernels compute the same forest.
//   Passes 3-4 need the x86-64 emitter (pass 5 additionally a build with
//   batch kernels enabled) and run only when the forest IR is error-free
//   (the emitter's preconditions are exactly the verifier's Error checks);
//   they are reported as "skipped" otherwise. Models over
//   the 48-feature registry space additionally get an informational
//   dead-feature report (registry features the forest never splits on).
//
//  plan ("t3plan v1"):
//   1. parse       — ParsePlanText (syntax only),
//   2. plan-verify — PlanVerifier over the node records: topology, arity,
//                    annotations, stage tags vs a recomputed pipeline
//                    decomposition, breaker placement.
//
//  corpus ("t3corpus v1"):
//   1. parse          — the harness corpus parser,
//   2. plan-verify    — PlanVerifier over every record's plan skeleton,
//   3. feature-audit  — FeatureAuditor over every FT/FE vector (finiteness,
//                       count/percentage ranges, true-vs-estimated
//                       structural identity),
//   4. corpus-audit   — CorpusAuditor cross-checks: medians vs runs, block
//                       shapes, feature counts vs the recomputed
//                       decomposition, duplicate records.
//
// Every invocation also audits the feature registry itself once (reported
// as pseudo-file "(feature-registry)"): catalog x registry index coverage,
// predicate-class exhaustiveness, executor stage mapping.
//
// Exit status (what CI gates on — machine-checkable, no stdout grepping):
//   0  every file clean,
//   1  warnings only,
//   2  any Error finding, unreadable file, or usage error.
// --strict promotes warnings to exit 2.
//
// --json replaces the human-readable report with one JSON document on
// stdout: per-file kind, pass outcomes and diagnostics plus aggregate
// counts.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/batch_equivalence_validator.h"
#include "analysis/corpus_auditor.h"
#include "analysis/feature_auditor.h"
#include "analysis/forest_verifier.h"
#include "analysis/jit_auditor.h"
#include "analysis/plan_verifier.h"
#include "analysis/translation_validator.h"
#include "cli_util.h"
#include "gbt/forest.h"
#include "harness/corpus.h"
#include "plan/plan_file.h"
#include "treejit/jit.h"

namespace {

/// Outcome of one analysis pass over one file.
enum class PassState { kOk, kFailed, kSkipped };

const char* PassStateName(PassState state) {
  switch (state) {
    case PassState::kOk:
      return "ok";
    case PassState::kFailed:
      return "failed";
    case PassState::kSkipped:
      return "skipped";
  }
  return "unknown";
}

struct PassResult {
  const char* name;
  PassState state = PassState::kSkipped;
};

/// Everything the linter learned about one file; rendered as text or JSON.
struct FileResult {
  std::string path;
  const char* kind = "model";  // model | plan | corpus | registry
  std::vector<PassResult> passes;
  t3::AnalysisReport report;
  bool unreadable = false;
  std::string unreadable_message;
  // Model files.
  size_t trees = 0;
  size_t nodes = 0;
  int features = 0;
  std::vector<std::string> dead_features;  ///< Informational, no severity.
  // Plan files / corpora.
  size_t plan_nodes = 0;
  size_t records = 0;
  size_t pipelines = 0;

  /// 0 clean / 1 warnings / 2 errors, before --strict promotion.
  int ExitCode() const {
    if (unreadable || report.HasErrors()) return 2;
    if (report.NumWarnings() > 0) return 1;
    return 0;
  }
};

void LintModel(const std::string& content, FileResult* result) {
  result->kind = "model";
  result->passes = {{"parse"},
                    {"forest-verifier"},
                    {"jit-audit"},
                    {"translation-validation"},
                    {"batch-equivalence"}};
  PassResult& parse = result->passes[0];
  PassResult& verify = result->passes[1];
  PassResult& audit = result->passes[2];
  PassResult& translate = result->passes[3];
  PassResult& batch = result->passes[4];

  t3::Result<t3::Forest> forest = t3::Forest::ParseTextUnvalidated(content);
  if (!forest.ok()) {
    parse.state = PassState::kFailed;
    result->report.Add(t3::Severity::kError, "parse", -1, -1,
                       forest.status().message());
    return;
  }
  parse.state = PassState::kOk;
  result->trees = forest->trees.size();
  result->nodes = forest->NumNodes();
  result->features = forest->num_features;
  result->dead_features = t3::FeatureAuditor().DeadFeatures(*forest);

  result->report = t3::ForestVerifier().Verify(*forest);
  verify.state =
      result->report.HasErrors() ? PassState::kFailed : PassState::kOk;

  // Only analyze code emitted from a verified forest: the emitter's own
  // preconditions are exactly the verifier's Error checks.
  if (verify.state != PassState::kOk || !t3::JitSupported()) return;

  t3::Result<t3::JitArtifact> artifact = t3::EmitForestCode(*forest);
  if (!artifact.ok()) {
    audit.state = PassState::kFailed;
    result->report.Add(t3::Severity::kError, "jit-emit", -1, -1,
                       artifact.status().message());
    return;
  }
  const t3::AnalysisReport audit_report = t3::JitCodeAuditor().Audit(
      artifact->code.data(), artifact->code.size(), artifact->entries,
      artifact->num_features);
  audit.state =
      audit_report.HasErrors() ? PassState::kFailed : PassState::kOk;
  result->report.Merge(audit_report);

  const t3::AnalysisReport equivalence =
      t3::TranslationValidator().Validate(*forest, artifact->code.data(),
                                          artifact->code.size(),
                                          artifact->entries);
  translate.state =
      equivalence.HasErrors() ? PassState::kFailed : PassState::kOk;
  result->report.Merge(equivalence);

  // Stays "skipped" on builds without the batch emitter (non-x86-64 or
  // -DT3_DISABLE_AVX2=ON) — the same contract as passes 3-4 off x86-64.
  if (!t3::BatchJitSupported()) return;
  t3::Result<t3::BatchJitArtifact> batch_artifact =
      t3::EmitForestBatchCode(*forest);
  if (!batch_artifact.ok()) {
    batch.state = PassState::kFailed;
    result->report.Add(t3::Severity::kError, "jit-emit", -1, -1,
                       batch_artifact.status().message());
    return;
  }
  t3::AnalysisReport batch_report = t3::JitCodeAuditor().AuditBatch(
      batch_artifact->code.data(), batch_artifact->code.size(),
      batch_artifact->entries, batch_artifact->pool_begin,
      batch_artifact->num_features);
  batch_report.Merge(t3::BatchEquivalenceValidator().Validate(
      *forest, batch_artifact->code.data(), batch_artifact->code.size(),
      batch_artifact->entries, batch_artifact->pool_begin));
  batch.state =
      batch_report.HasErrors() ? PassState::kFailed : PassState::kOk;
  result->report.Merge(batch_report);
}

void LintPlan(const std::string& content, FileResult* result) {
  result->kind = "plan";
  result->passes = {{"parse"}, {"plan-verify"}};
  PassResult& parse = result->passes[0];
  PassResult& verify = result->passes[1];

  t3::Result<std::vector<t3::PlanNodeRecord>> records =
      t3::ParsePlanText(content);
  if (!records.ok()) {
    parse.state = PassState::kFailed;
    result->report.Add(t3::Severity::kError, "parse", -1, -1,
                       records.status().message());
    return;
  }
  parse.state = PassState::kOk;
  result->plan_nodes = records->size();

  result->report = t3::PlanVerifier().VerifyRecords(*records);
  verify.state =
      result->report.HasErrors() ? PassState::kFailed : PassState::kOk;
}

/// Which corpus pass a CorpusAuditor finding belongs to, by check-id
/// namespace: merged PlanVerifier findings keep their plan-* ids, merged
/// FeatureAuditor findings their feature-*/registry-* ids.
const char* CorpusPassFor(const std::string& check) {
  if (check.rfind("plan-", 0) == 0) return "plan-verify";
  if (check.rfind("feature-", 0) == 0 || check.rfind("registry-", 0) == 0) {
    return "feature-audit";
  }
  return "corpus-audit";
}

void LintCorpus(const std::string& content, const std::string& path,
                FileResult* result) {
  result->kind = "corpus";
  result->passes = {{"parse"},
                    {"plan-verify"},
                    {"feature-audit"},
                    {"corpus-audit"}};
  PassResult& parse = result->passes[0];

  t3::Result<t3::Corpus> corpus = t3::ParseCorpus(content, path);
  if (!corpus.ok()) {
    parse.state = PassState::kFailed;
    result->report.Add(t3::Severity::kError, "parse", -1, -1,
                       corpus.status().message());
    return;
  }
  parse.state = PassState::kOk;
  result->records = corpus->records.size();
  result->pipelines = corpus->NumPipelines();

  result->report = t3::CorpusAuditor().Audit(*corpus, path);
  for (size_t p = 1; p < result->passes.size(); ++p) {
    result->passes[p].state = PassState::kOk;
  }
  for (const t3::Diagnostic& diagnostic : result->report.diagnostics()) {
    if (diagnostic.severity != t3::Severity::kError) continue;
    const char* pass = CorpusPassFor(diagnostic.check);
    for (size_t p = 1; p < result->passes.size(); ++p) {
      if (std::strcmp(result->passes[p].name, pass) == 0) {
        result->passes[p].state = PassState::kFailed;
      }
    }
  }
}

FileResult LintFile(const std::string& path) {
  FileResult result;
  result.path = path;

  t3::Result<std::string> content = t3::ReadFileToString(path);
  if (!content.ok()) {
    result.unreadable = true;
    result.unreadable_message = content.status().ToString();
    result.passes = {{"parse", PassState::kFailed}};
    return result;
  }
  // Sniff the header token; the three formats are self-identifying.
  if (content->rfind("t3corpus", 0) == 0) {
    LintCorpus(*content, path, &result);
  } else if (content->rfind("t3plan", 0) == 0) {
    LintPlan(*content, &result);
  } else {
    LintModel(*content, &result);
  }
  return result;
}

/// The once-per-invocation registry self-audit, reported as a pseudo-file.
FileResult LintRegistry() {
  FileResult result;
  result.path = "(feature-registry)";
  result.kind = "registry";
  result.report = t3::FeatureAuditor().AuditRegistry();
  result.passes = {{"registry-audit", result.report.HasErrors()
                                          ? PassState::kFailed
                                          : PassState::kOk}};
  return result;
}

void PrintHuman(const FileResult& result) {
  if (result.unreadable) {
    std::fprintf(stderr, "%s: %s\n", result.path.c_str(),
                 result.unreadable_message.c_str());
    return;
  }
  for (const t3::Diagnostic& diagnostic : result.report.diagnostics()) {
    std::printf("%s: %s\n", result.path.c_str(),
                diagnostic.ToString().c_str());
  }
  for (const std::string& name : result.dead_features) {
    std::printf("%s: note[dead-feature] %s is never split on\n",
                result.path.c_str(), name.c_str());
  }
  std::string passes;
  for (const PassResult& pass : result.passes) {
    if (!passes.empty()) passes += ' ';
    passes += pass.name;
    passes += '=';
    passes += PassStateName(pass.state);
  }
  std::string stats;
  if (std::strcmp(result.kind, "model") == 0) {
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), "%zu trees, %zu nodes, %d features",
                  result.trees, result.nodes, result.features);
    stats = buffer;
  } else if (std::strcmp(result.kind, "plan") == 0) {
    stats = std::to_string(result.plan_nodes) + " plan nodes";
  } else if (std::strcmp(result.kind, "corpus") == 0) {
    stats = std::to_string(result.records) + " records, " +
            std::to_string(result.pipelines) + " pipelines";
  } else {
    stats = "feature registry";
  }
  std::printf("%s: %s [%s]: %zu errors, %zu warnings\n", result.path.c_str(),
              stats.c_str(), passes.c_str(), result.report.NumErrors(),
              result.report.NumWarnings());
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintJson(const std::vector<FileResult>& results, int exit_code) {
  std::printf("{\n  \"files\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const FileResult& result = results[i];
    std::printf("    {\n      \"path\": \"%s\",\n      \"kind\": \"%s\",\n",
                JsonEscape(result.path).c_str(), result.kind);
    if (result.unreadable) {
      std::printf("      \"unreadable\": \"%s\",\n",
                  JsonEscape(result.unreadable_message).c_str());
    }
    if (std::strcmp(result.kind, "model") == 0) {
      std::printf("      \"trees\": %zu,\n      \"nodes\": %zu,\n"
                  "      \"features\": %d,\n",
                  result.trees, result.nodes, result.features);
      std::printf("      \"dead_features\": [");
      for (size_t d = 0; d < result.dead_features.size(); ++d) {
        std::printf("%s\"%s\"", d == 0 ? "" : ", ",
                    JsonEscape(result.dead_features[d]).c_str());
      }
      std::printf("],\n");
    } else if (std::strcmp(result.kind, "plan") == 0) {
      std::printf("      \"plan_nodes\": %zu,\n", result.plan_nodes);
    } else if (std::strcmp(result.kind, "corpus") == 0) {
      std::printf("      \"records\": %zu,\n      \"pipelines\": %zu,\n",
                  result.records, result.pipelines);
    }
    std::printf("      \"passes\": {");
    for (size_t p = 0; p < result.passes.size(); ++p) {
      std::printf("%s\"%s\": \"%s\"", p == 0 ? "" : ", ",
                  result.passes[p].name,
                  PassStateName(result.passes[p].state));
    }
    std::printf("},\n      \"diagnostics\": [");
    const std::vector<t3::Diagnostic>& diagnostics =
        result.report.diagnostics();
    for (size_t d = 0; d < diagnostics.size(); ++d) {
      const t3::Diagnostic& diagnostic = diagnostics[d];
      std::printf("%s\n        {\"severity\": \"%s\", \"check\": \"%s\", "
                  "\"tree\": %d, \"node\": %d, \"message\": \"%s\"}",
                  d == 0 ? "" : ",", t3::SeverityName(diagnostic.severity),
                  JsonEscape(diagnostic.check).c_str(), diagnostic.tree,
                  diagnostic.node, JsonEscape(diagnostic.message).c_str());
    }
    std::printf("%s],\n", diagnostics.empty() ? "" : "\n      ");
    std::printf("      \"errors\": %zu,\n      \"warnings\": %zu\n    }%s\n",
                result.report.NumErrors(), result.report.NumWarnings(),
                i + 1 == results.size() ? "" : ",");
  }
  size_t errors = 0;
  size_t warnings = 0;
  for (const FileResult& result : results) {
    errors += result.report.NumErrors();
    warnings += result.report.NumWarnings();
  }
  std::printf("  ],\n  \"errors\": %zu,\n  \"warnings\": %zu,\n"
              "  \"exit\": %d\n}\n",
              errors, warnings, exit_code);
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (argv[i][0] == '-') {
      t3::CliError("t3_lint", argv[i], "is not a recognized flag");
      return 2;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: t3_lint [--strict] [--json] <file>...\n");
    return 2;
  }

  std::vector<FileResult> results;
  results.reserve(paths.size() + 1);
  results.push_back(LintRegistry());
  for (const std::string& path : paths) {
    results.push_back(LintFile(path));
  }
  int exit_code = 0;
  for (const FileResult& result : results) {
    int code = result.ExitCode();
    if (strict && code == 1) code = 2;
    if (code > exit_code) exit_code = code;
  }

  if (json) {
    PrintJson(results, exit_code);
  } else {
    for (const FileResult& result : results) PrintHuman(result);
  }
  return exit_code;
}
