// t3_explain — build a canned plan over a generated instance, run it through
// the vectorized executor, and print the ExplainAnalyze report (per-pipeline
// wall times + per-operator tuple counts). CI's smoke step runs this to
// prove plan building, pipeline decomposition, and execution work end to end.
//
//   t3_explain <instance> [--seed N] [--scale X] [--query QUERY]
//
// QUERY picks the canned plan shape:
//   agg   (default) — scan largest table -> filter -> group-by aggregate
//   join            — fact scan -> FK hash join -> global count
//   sort            — scan largest table -> sort -> limit 10
//
// Exit status: 0 success, 1 execution error, 2 usage error.

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "cli_util.h"
#include "common/string_util.h"
#include "datagen/generator.h"
#include "datagen/spec.h"
#include "engine/executor.h"
#include "plan/pipeline.h"
#include "plan/plan.h"
#include "storage/catalog.h"

namespace t3 {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: t3_explain <instance> [--seed N] [--scale X] "
               "[--query agg|join|sort]\n");
  return 2;
}

struct Args {
  std::string instance;
  std::string query = "agg";
  uint64_t seed = 42;
  double scale = 0.0;  // 0 = the instance's own scale.
};

constexpr const char* kTool = "t3_explain";

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->instance = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed") {
      if (!CliUint64(kTool, argc, argv, &i, "--seed", 0, UINT64_MAX,
                     "must be an unsigned integer", &args->seed)) {
        return false;
      }
    } else if (arg == "--scale") {
      if (!CliPositiveDouble(kTool, argc, argv, &i, "--scale",
                             &args->scale)) {
        return false;
      }
    } else if (arg == "--query") {
      if (!CliValue(kTool, argc, argv, &i, "--query", &args->query)) {
        return false;
      }
      if (args->query != "agg" && args->query != "join" &&
          args->query != "sort") {
        return CliError(kTool, "--query", "must be one of: agg, join, sort");
      }
    } else {
      return CliError(kTool, arg.c_str(), "is not a recognized argument");
    }
  }
  return true;
}

const Table& LargestTable(const Catalog& catalog) {
  size_t best = 0;
  for (size_t t = 1; t < catalog.num_tables(); ++t) {
    if (catalog.table(t).num_rows() > catalog.table(best).num_rows()) {
      best = t;
    }
  }
  return catalog.table(best);
}

int FindColumnOfType(const Table& table, bool want_float) {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const ColumnType type = table.column(c).type();
    if (want_float ? type == ColumnType::kFloat64 : IsIntegerBacked(type)) {
      return static_cast<int>(c);
    }
  }
  return -1;
}

/// First FK relationship in the instance spec: (fact table, fk column index,
/// dim table, sequential key column index).
struct FkJoin {
  std::string fact;
  std::string dim;
  int fk_col = -1;
  int key_col = -1;
};

std::optional<FkJoin> FindFkJoin(const InstanceSpec& spec) {
  for (const TableSpec& table : spec.tables) {
    for (size_t c = 0; c < table.columns.size(); ++c) {
      if (table.columns[c].dist != DistKind::kForeignKey) continue;
      for (const TableSpec& target : spec.tables) {
        if (target.name != table.columns[c].fk_table) continue;
        for (size_t k = 0; k < target.columns.size(); ++k) {
          if (target.columns[k].dist == DistKind::kSequential) {
            return FkJoin{table.name, target.name, static_cast<int>(c),
                          static_cast<int>(k)};
          }
        }
      }
    }
  }
  return std::nullopt;
}

Result<PhysicalPlan> BuildQuery(const Catalog& catalog,
                                const InstanceSpec& spec,
                                const std::string& query) {
  // The canned shapes only reference columns whose types were just checked,
  // so builder steps cannot fail; Result::operator* asserts that.
  PlanBuilder builder(&catalog);
  if (query == "join") {
    const std::optional<FkJoin> fk = FindFkJoin(spec);
    if (!fk.has_value()) {
      return InvalidArgumentError(
          "instance has no foreign-key relationship; use --query agg");
    }
    const int probe = *builder.Scan(fk->fact);
    const int build = *builder.Scan(fk->dim, {fk->key_col});
    const int join = *builder.HashJoin(probe, build, {fk->fk_col}, {0});
    const int agg =
        *builder.HashAggregate(join, {}, {{AggFunc::kCountStar, -1}});
    return builder.Output(agg);
  }

  const Table& table = LargestTable(catalog);
  const int value_col = FindColumnOfType(table, /*want_float=*/true);
  if (value_col < 0) {
    return InvalidArgumentError(
        StrFormat("table %s has no float64 column", table.name().c_str()));
  }
  if (query == "sort") {
    const int scan = *builder.Scan(table.name());
    const int sort = *builder.Sort(scan, {{value_col, true}});
    return builder.Output(*builder.Limit(sort, 10));
  }
  const int group_col = FindColumnOfType(table, /*want_float=*/false);
  if (group_col < 0) {
    return InvalidArgumentError(
        StrFormat("table %s has no integer column", table.name().c_str()));
  }
  const int scan = *builder.Scan(table.name());
  const int filter =
      *builder.Filter(scan, {{value_col, CompareOp::kGt, 0.0}});
  const int agg = *builder.HashAggregate(
      filter, {group_col},
      {{AggFunc::kCountStar, -1}, {AggFunc::kSum, value_col}});
  return builder.Output(agg);
}

int Run(const Args& args) {
  Result<const InstanceSpec*> spec = FindInstance(args.instance);
  if (!spec.ok()) {
    std::fprintf(stderr, "t3_explain: %s\n", spec.status().ToString().c_str());
    return 2;
  }
  DatagenOptions options;
  options.seed = args.seed;
  options.scale_override = args.scale;
  Result<Catalog> catalog = GenerateInstance(**spec, options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "t3_explain: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }

  Result<PhysicalPlan> plan = BuildQuery(*catalog, **spec, args.query);
  if (!plan.ok()) {
    std::fprintf(stderr, "t3_explain: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  Result<PipelineDecomposition> decomposition = DecomposePipelines(*plan);
  if (!decomposition.ok()) {
    std::fprintf(stderr, "t3_explain: %s\n",
                 decomposition.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", DecompositionToString(*plan, *decomposition).c_str());

  const Executor executor(*catalog);
  Result<ExplainAnalyze> run = executor.Execute(*plan);
  if (!run.ok()) {
    std::fprintf(stderr, "t3_explain: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", run->ToString(*plan).c_str());
  std::printf("result rows: %llu\n",
              static_cast<unsigned long long>(run->result_rows()));
  return 0;
}

}  // namespace
}  // namespace t3

int main(int argc, char** argv) {
  t3::Args args;
  if (!t3::ParseArgs(argc, argv, &args)) return t3::Usage();
  return t3::Run(args);
}
