#ifndef T3_TOOLS_CLI_UTIL_H_
#define T3_TOOLS_CLI_UTIL_H_

#include <cstdint>
#include <string>

namespace t3 {

/// Strict flag parsing shared by the CLI tools (t3_explain, t3_datagen,
/// t3_corpusgen, t3_lint). Every helper follows the tools' common contract:
/// on bad input it prints "<tool>: <flag> <detail>" to stderr and returns
/// false, and the caller's ParseArgs routes false through Usage() to exit
/// status 2. Value-taking helpers consume argv[*i + 1] and advance *i.

/// Prints "<tool>: <flag> <detail>" and returns false.
bool CliError(const char* tool, const char* flag, const char* detail);

/// Consumes the flag's string value (content checks stay with the caller).
bool CliValue(const char* tool, int argc, char** argv, int* i,
              const char* flag, std::string* out);

/// Consumes an unsigned integer in [min, max]; `detail` is the error text
/// (e.g. "must be an integer in [1, 1000]").
bool CliUint64(const char* tool, int argc, char** argv, int* i,
               const char* flag, uint64_t min, uint64_t max,
               const char* detail, uint64_t* out);

/// Consumes a finite double > 0 (the shared --scale contract).
bool CliPositiveDouble(const char* tool, int argc, char** argv, int* i,
                       const char* flag, double* out);

}  // namespace t3

#endif  // T3_TOOLS_CLI_UTIL_H_
