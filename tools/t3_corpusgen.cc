// t3_corpusgen — regenerates training corpora from live runs: datagen
// instances -> querygen plans -> engine execution -> featurizer vectors ->
// "t3corpus v1" text.
//
//   t3_corpusgen [--instances a,b] [--groups 0,10] [--queries N] [--runs N]
//                [--seed N] [--scale X] [--threads N] [--no-fixed]
//                [--out FILE]
//
// --instances — comma-separated instance names (default: all 21).
// --groups    — comma-separated structure-group codes 0..15 (default: all).
// --queries   — generated queries per (instance, group) (default 2).
// --runs      — timed executions per query; medians are stored (default 3).
// --seed      — datagen + querygen seed (default 42).
// --scale     — overrides every instance's scale factor (default: own).
// --no-fixed  — skip the fixed TPC-H-like/TPC-DS-like/JOB-like suites.
// --out       — write the corpus to FILE (default: stdout).
//
// Before writing, the corpus is re-parsed from its own serialization and
// re-serialized; the tool fails if the round-trip is not bit-exact.
//
// Exit status: 0 success, 1 generation/round-trip failure, 2 usage error.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cli_util.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "gbt/forest.h"
#include "harness/corpus.h"
#include "harness/runner.h"
#include "querygen/querygen.h"

namespace t3 {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: t3_corpusgen [--instances a,b] [--groups 0,10] [--queries N]\n"
      "                    [--runs N] [--seed N] [--scale X] [--threads N]\n"
      "                    [--no-fixed] [--out FILE]\n");
  return 2;
}

struct Args {
  std::vector<std::string> instances;  // empty = all
  std::vector<QueryGroup> groups;      // empty = all
  int queries = 2;
  int runs = 3;
  uint64_t seed = 42;
  double scale = 0.0;  // 0 = each instance's own scale.
  size_t threads = 0;  // 0 = single-threaded datagen.
  bool fixed = true;
  std::string out;  // empty = stdout.
};

constexpr const char* kTool = "t3_corpusgen";

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-fixed") {
      args->fixed = false;
    } else if (arg == "--instances") {
      std::string value;
      if (!CliValue(kTool, argc, argv, &i, "--instances", &value)) {
        return false;
      }
      args->instances = Split(value, ',');
      if (args->instances.empty()) {
        return CliError(kTool, "--instances",
                        "must name at least one instance");
      }
    } else if (arg == "--groups") {
      std::string value;
      if (!CliValue(kTool, argc, argv, &i, "--groups", &value)) return false;
      for (const std::string& token : Split(value, ',')) {
        uint64_t code = 0;
        if (!ParseUint64(token, &code) ||
            code >= static_cast<uint64_t>(kNumQueryGroups)) {
          return CliError(kTool, "--groups", "entries must be codes 0..15");
        }
        Result<QueryGroup> group = QueryGroupFromCode(static_cast<int>(code));
        if (!group.ok()) {
          return CliError(kTool, "--groups", "entries must be codes 0..15");
        }
        args->groups.push_back(*group);
      }
      if (args->groups.empty()) {
        return CliError(kTool, "--groups", "must name at least one group");
      }
    } else if (arg == "--queries") {
      uint64_t queries = 0;
      if (!CliUint64(kTool, argc, argv, &i, "--queries", 1, 10000,
                     "must be an integer in [1, 10000]", &queries)) {
        return false;
      }
      args->queries = static_cast<int>(queries);
    } else if (arg == "--runs") {
      uint64_t runs = 0;
      if (!CliUint64(kTool, argc, argv, &i, "--runs", 1, 1000,
                     "must be an integer in [1, 1000]", &runs)) {
        return false;
      }
      args->runs = static_cast<int>(runs);
    } else if (arg == "--seed") {
      if (!CliUint64(kTool, argc, argv, &i, "--seed", 0, UINT64_MAX,
                     "must be an unsigned integer", &args->seed)) {
        return false;
      }
    } else if (arg == "--scale") {
      if (!CliPositiveDouble(kTool, argc, argv, &i, "--scale",
                             &args->scale)) {
        return false;
      }
    } else if (arg == "--threads") {
      uint64_t threads = 0;
      if (!CliUint64(kTool, argc, argv, &i, "--threads", 0, 1024,
                     "must be an unsigned integer <= 1024", &threads)) {
        return false;
      }
      args->threads = static_cast<size_t>(threads);
    } else if (arg == "--out") {
      if (!CliValue(kTool, argc, argv, &i, "--out", &args->out)) {
        return false;
      }
      if (args->out.empty()) {
        return CliError(kTool, "--out", "must be a file path");
      }
    } else {
      return CliError(kTool, arg.c_str(), "is not a recognized argument");
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();

  std::unique_ptr<ThreadPool> pool;
  if (args.threads > 0) pool = std::make_unique<ThreadPool>(args.threads);
  LiveCorpusOptions options;
  options.instances = args.instances;
  options.groups = args.groups;
  options.queries_per_group = args.queries;
  options.fixed_suites = args.fixed;
  options.runs = args.runs;
  options.seed = args.seed;
  options.scale_override = args.scale;
  options.pool = pool.get();

  Result<Corpus> corpus = BuildLiveCorpus(options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "t3_corpusgen: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "t3_corpusgen: %zu records\n", corpus->records.size());

  // Self-check: the emitted text must round-trip bit-exactly through the
  // harness loader (the acceptance bar of the live pipeline).
  const std::string text = CorpusToText(*corpus);
  Result<Corpus> reparsed = ParseCorpus(text);
  if (!reparsed.ok()) {
    std::fprintf(stderr, "t3_corpusgen: emitted corpus does not parse: %s\n",
                 reparsed.status().ToString().c_str());
    return 1;
  }
  if (CorpusToText(*reparsed) != text) {
    std::fprintf(stderr,
                 "t3_corpusgen: round-trip through the corpus loader is not "
                 "bit-exact\n");
    return 1;
  }

  if (args.out.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  const Status saved = WriteStringToFile(args.out, text);
  if (!saved.ok()) {
    std::fprintf(stderr, "t3_corpusgen: %s\n", saved.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace t3

int main(int argc, char** argv) { return t3::Run(argc, argv); }
