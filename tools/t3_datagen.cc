// t3_datagen — CLI for the 21-instance synthetic database generator.
//
//   t3_datagen list [--json]
//   t3_datagen describe <instance> [--json]
//   t3_datagen generate <instance> [--seed N] [--scale X] [--threads N] [--json]
//   t3_datagen stats <instance> [--seed N] [--scale X] [--threads N] [--json]
//   t3_datagen golden
//
// list      — instance names with family/scale/table counts.
// describe  — the instance's schema (tables, columns, distributions).
// generate  — generates the instance and prints per-table row counts and
//             content checksums (the bit-determinism fingerprint).
// stats     — generates and prints per-column statistics; with --json this is
//             the same canonical document the golden test diffs.
// golden    — emits data/instance_stats_golden.json's exact expected content
//             (all instances, seed 42, scale 0.05); redirect to regenerate the
//             fixture after an intentional generator change.
//
// Exit status: 0 success, 2 usage error or unknown instance.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cli_util.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "datagen/generator.h"
#include "datagen/spec.h"
#include "datagen/stats_json.h"
#include "storage/checksum.h"

namespace t3 {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: t3_datagen <command> [args]\n"
      "  list [--json]\n"
      "  describe <instance> [--json]\n"
      "  generate <instance> [--seed N] [--scale X] [--threads N] [--json]\n"
      "  stats <instance> [--seed N] [--scale X] [--threads N] [--json]\n"
      "  golden\n");
  return 2;
}

struct Args {
  std::string command;
  std::string instance;
  uint64_t seed = 42;
  double scale = 0.0;  // 0 = the instance's own scale.
  size_t threads = 0;  // 0 = single-threaded.
  bool json = false;
};

constexpr const char* kTool = "t3_datagen";

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      args->json = true;
    } else if (arg == "--seed") {
      if (!CliUint64(kTool, argc, argv, &i, "--seed", 0, UINT64_MAX,
                     "must be an unsigned integer", &args->seed)) {
        return false;
      }
    } else if (arg == "--scale") {
      if (!CliPositiveDouble(kTool, argc, argv, &i, "--scale",
                             &args->scale)) {
        return false;
      }
    } else if (arg == "--threads") {
      uint64_t threads = 0;
      if (!CliUint64(kTool, argc, argv, &i, "--threads", 0, 1024,
                     "must be an unsigned integer <= 1024", &threads)) {
        return false;
      }
      args->threads = static_cast<size_t>(threads);
    } else if (!arg.empty() && arg[0] != '-' && args->instance.empty()) {
      args->instance = arg;
    } else {
      return CliError(kTool, arg.c_str(), "is not a recognized argument");
    }
  }
  return true;
}

const char* DistName(const ColumnSpec& col) {
  if (col.corr_base >= 0) return "correlated";
  switch (col.dist) {
    case DistKind::kSequential:
      return "sequential";
    case DistKind::kUniformInt:
      return "uniform_int";
    case DistKind::kUniformDouble:
      return "uniform_double";
    case DistKind::kNormal:
      return "normal";
    case DistKind::kZipf:
      return "zipf";
    case DistKind::kForeignKey:
      return "fk";
    case DistKind::kString:
      return "string";
    case DistKind::kDate:
      return "date";
  }
  return "?";
}

int RunList(const Args& args) {
  if (args.json) std::printf("[\n");
  const auto& instances = AllInstances();
  for (size_t i = 0; i < instances.size(); ++i) {
    const InstanceSpec& spec = instances[i];
    uint64_t total_rows = 0;
    for (const TableSpec& table : spec.tables) {
      total_rows += ScaledRows(table.base_rows, spec.scale);
    }
    if (args.json) {
      std::printf(
          "  {\"name\": %s, \"family\": %s, \"scale\": %g, \"tables\": %zu, "
          "\"rows\": %llu}%s\n",
          JsonQuote(spec.name).c_str(), JsonQuote(spec.family).c_str(),
          spec.scale, spec.tables.size(),
          static_cast<unsigned long long>(total_rows),
          i + 1 < instances.size() ? "," : "");
    } else {
      std::printf("%-16s family=%-9s scale=%-4g tables=%zu rows=%llu\n",
                  spec.name.c_str(), spec.family.c_str(), spec.scale,
                  spec.tables.size(), static_cast<unsigned long long>(total_rows));
    }
  }
  if (args.json) std::printf("]\n");
  return 0;
}

int RunDescribe(const InstanceSpec& spec, const Args& args) {
  const double scale = args.scale > 0.0 ? args.scale : spec.scale;
  if (args.json) {
    std::printf("{\n  \"name\": %s,\n  \"family\": %s,\n  \"scale\": %g,\n"
                "  \"tables\": [\n",
                JsonQuote(spec.name).c_str(), JsonQuote(spec.family).c_str(),
                scale);
    for (size_t t = 0; t < spec.tables.size(); ++t) {
      const TableSpec& table = spec.tables[t];
      std::printf("    {\"name\": %s, \"rows\": %llu, \"columns\": [\n",
                  JsonQuote(table.name).c_str(),
                  static_cast<unsigned long long>(
                      ScaledRows(table.base_rows, scale)));
      for (size_t c = 0; c < table.columns.size(); ++c) {
        const ColumnSpec& col = table.columns[c];
        std::printf("      {\"name\": %s, \"type\": %s, \"dist\": %s, "
                    "\"null_fraction\": %g}%s\n",
                    JsonQuote(col.name).c_str(),
                    JsonQuote(ColumnTypeName(col.type)).c_str(),
                    JsonQuote(DistName(col)).c_str(), col.null_fraction,
                    c + 1 < table.columns.size() ? "," : "");
      }
      std::printf("    ]}%s\n", t + 1 < spec.tables.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }
  std::printf("%s (family %s, scale %g)\n", spec.name.c_str(),
              spec.family.c_str(), scale);
  for (const TableSpec& table : spec.tables) {
    std::printf("  %s (%llu rows)\n", table.name.c_str(),
                static_cast<unsigned long long>(
                    ScaledRows(table.base_rows, scale)));
    for (const ColumnSpec& col : table.columns) {
      std::printf("    %-14s %-8s %-14s", col.name.c_str(),
                  ColumnTypeName(col.type), DistName(col));
      if (col.dist == DistKind::kForeignKey) {
        std::printf(" -> %s", col.fk_table.c_str());
      }
      if (col.null_fraction > 0.0) std::printf(" nulls=%g", col.null_fraction);
      std::printf("\n");
    }
  }
  return 0;
}

int RunGenerate(const InstanceSpec& spec, const Args& args, bool with_stats) {
  std::unique_ptr<ThreadPool> pool;
  if (args.threads > 0) pool = std::make_unique<ThreadPool>(args.threads);
  DatagenOptions options;
  options.seed = args.seed;
  options.scale_override = args.scale;
  options.pool = pool.get();
  Result<Catalog> catalog = GenerateInstance(spec, options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "t3_datagen: %s\n", catalog.status().ToString().c_str());
    return 2;
  }
  if (with_stats) {
    if (args.json) {
      std::printf("%s\n", CatalogStatsJson(*catalog, "").c_str());
      return 0;
    }
    for (size_t t = 0; t < catalog->num_tables(); ++t) {
      const Table& table = catalog->table(t);
      std::printf("%s (%zu rows)\n", table.name().c_str(), table.num_rows());
      for (size_t c = 0; c < table.num_columns(); ++c) {
        const Column& column = table.column(c);
        const ColumnStats& stats = table.stats()[c];
        std::string range = "all-null";
        if (stats.has_range) {
          switch (column.type()) {
            case ColumnType::kInt64:
              range = StrFormat("[%lld, %lld]",
                                static_cast<long long>(stats.min_i64),
                                static_cast<long long>(stats.max_i64));
              break;
            case ColumnType::kFloat64:
              range = StrFormat("[%g, %g]", stats.min_f64, stats.max_f64);
              break;
            case ColumnType::kDate:
              range = StrFormat("[%s, %s]", FormatDate(stats.min_i64).c_str(),
                                FormatDate(stats.max_i64).c_str());
              break;
            case ColumnType::kString:
              range = StrFormat("[%s, %s]",
                                stats.min_str.substr(0, 16).c_str(),
                                stats.max_str.substr(0, 16).c_str());
              break;
          }
        }
        std::printf("  %-14s %-8s ndv%s%llu nulls=%llu %s\n",
                    column.name().c_str(), ColumnTypeName(column.type()),
                    stats.ndv_exact ? "=" : "~",
                    static_cast<unsigned long long>(stats.ndv),
                    static_cast<unsigned long long>(stats.null_count),
                    range.c_str());
      }
    }
    return 0;
  }
  if (args.json) {
    std::printf("{\n  \"instance\": %s,\n  \"checksum\": \"%016llx\",\n"
                "  \"tables\": [\n",
                JsonQuote(spec.name).c_str(),
                static_cast<unsigned long long>(CatalogChecksum(*catalog)));
    for (size_t t = 0; t < catalog->num_tables(); ++t) {
      const Table& table = catalog->table(t);
      std::printf("    {\"name\": %s, \"rows\": %zu, \"checksum\": "
                  "\"%016llx\"}%s\n",
                  JsonQuote(table.name()).c_str(), table.num_rows(),
                  static_cast<unsigned long long>(TableChecksum(table)),
                  t + 1 < catalog->num_tables() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }
  for (size_t t = 0; t < catalog->num_tables(); ++t) {
    const Table& table = catalog->table(t);
    std::printf("%-18s %8zu rows  checksum %016llx\n", table.name().c_str(),
                table.num_rows(),
                static_cast<unsigned long long>(TableChecksum(table)));
  }
  std::printf("%-18s %8s       checksum %016llx\n", "(catalog)", "",
              static_cast<unsigned long long>(CatalogChecksum(*catalog)));
  return 0;
}

int Run(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (args.command == "list") return RunList(args);
  if (args.command == "golden") {
    std::fputs(GoldenStatsJson(kGoldenSeed, kGoldenScale, nullptr).c_str(),
               stdout);
    return 0;
  }
  if (args.command != "describe" && args.command != "generate" &&
      args.command != "stats") {
    return Usage();
  }
  if (args.instance.empty()) return Usage();
  Result<const InstanceSpec*> spec = FindInstance(args.instance);
  if (!spec.ok()) {
    std::fprintf(stderr, "t3_datagen: %s\n", spec.status().ToString().c_str());
    return 2;
  }
  if (args.command == "describe") return RunDescribe(**spec, args);
  return RunGenerate(**spec, args, args.command == "stats");
}

}  // namespace
}  // namespace t3

int main(int argc, char** argv) { return t3::Run(argc, argv); }
